//! Quickstart: trace lineage for a small script, inspect the reuse cache,
//! serialize the lineage log, and recompute an intermediate from it.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use lima::prelude::*;

fn main() {
    // A small feature-engineering fragment with built-in redundancy: the
    // Gram matrix is needed twice.
    let script = "
        mu = colMeans(X);
        Xc = X - mu;
        G1 = t(Xc) %*% Xc;       # traced as tsmm(Xc)
        G2 = t(Xc) %*% Xc;       # identical lineage -> full reuse
        C = G1 / (nrow(X) - 1);
        s = sum(C + G2);
    ";
    let x = DenseMatrix::from_fn(1_000, 20, |i, j| ((i * 7 + j * 13) % 97) as f64 / 97.0);
    let config = LimaConfig::lima();
    let result =
        run_script(script, &config, &[("X", Value::matrix(x.clone()))]).expect("script runs");

    println!("s = {}", result.value("s").as_f64().unwrap());
    println!("\n-- LIMA statistics --\n{}", result.ctx.stats.report());

    // Every live variable has a lineage DAG. Serialize the lineage of C —
    // the paper's `lineage(X)` built-in.
    let lineage = result.ctx.lineage.get("C").expect("traced").clone();
    let log = serialize_lineage(&lineage);
    println!(
        "\n-- lineage log of C ({} nodes) --\n{log}",
        lineage.dag_size()
    );

    // The log round-trips and identifies the intermediate exactly.
    let restored = deserialize_lineage(&log).expect("well-formed log");
    assert!(lima_core::lineage::item::lineage_eq(&lineage, &restored));

    // Re-computation from lineage: a straight-line program that reproduces C
    // (paper §3.1, Fig 3 "reconstruct").
    let mut ctx = ExecutionContext::new(LimaConfig::base());
    ctx.data.register("var:X", Value::matrix(x));
    let recomputed = recompute(&restored, &mut ctx).expect("reconstructable");
    assert!(recomputed.approx_eq(result.value("C"), 1e-12));
    println!("reconstructed C matches the traced intermediate ✓");
}
