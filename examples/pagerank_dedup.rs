//! Lineage deduplication on PageRank (paper Example 4 / Fig 4): the loop
//! body's lineage is traced once per distinct control path as a *patch*;
//! every iteration appends a single dedup item. Plain and deduplicated
//! traces compare equal and reconstruct to the same value.
//!
//! ```text
//! cargo run --release --example pagerank_dedup
//! ```

use lima::prelude::*;
use lima_core::lineage::item::lineage_eq;

fn run(config: LimaConfig) -> RunResult {
    let p = pipelines::pagerank_pipeline(200, 50, 7);
    run_script(&p.script, &config, &p.input_refs()).expect("pagerank runs")
}

fn main() {
    let plain = run(LimaConfig::tracing_only());
    let dedup = run(LimaConfig::tracing_dedup());

    let lin_plain = plain.ctx.lineage.get("p").expect("traced").clone();
    let lin_dedup = dedup.ctx.lineage.get("p").expect("traced").clone();

    println!("PageRank, 50 iterations:");
    println!(
        "  plain trace: {:>6} nodes, {:>8} bytes",
        lin_plain.dag_size(),
        lin_plain.dag_bytes()
    );
    println!(
        "  dedup trace: {:>6} nodes, {:>8} bytes  ({} patches)",
        lin_dedup.dag_size(),
        lin_dedup.dag_bytes(),
        LimaStats::get(&dedup.ctx.stats.dedup_patches)
    );

    // Equivalence across representations (paper §3.2, "Operations on
    // Deduplicated Graphs"): hashes are equal, comparison resolves patches.
    assert_eq!(lin_plain.hash_value(), lin_dedup.hash_value());
    assert!(lineage_eq(&lin_plain, &lin_dedup));
    println!("  plain and deduplicated traces compare equal ✓");

    // The dedup trace serializes with its patch dictionary — compactly.
    let log_plain = serialize_lineage(&lin_plain);
    let log_dedup = serialize_lineage(&lin_dedup);
    println!(
        "  serialized: {} bytes plain vs {} bytes dedup",
        log_plain.len(),
        log_dedup.len()
    );

    // Reconstruction expands the patches back into a straight-line program.
    let p = pipelines::pagerank_pipeline(200, 50, 7);
    let mut ctx = ExecutionContext::new(LimaConfig::base());
    for (name, v) in &p.inputs {
        ctx.data.register(format!("var:{name}"), v.clone());
        ctx.data.register(name.clone(), v.clone());
    }
    let recomputed = recompute(&lin_dedup, &mut ctx).expect("reconstructable");
    assert!(recomputed.approx_eq(dedup.value("p"), 1e-12));
    println!("  reconstruction from the dedup trace reproduces p ✓");
}
