//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no network access to crates.io, so the workspace
//! vendors the tiny API subset it actually uses: [`Mutex`] (non-poisoning
//! `lock()`), [`Condvar`] with `wait`/`wait_for`/`notify_all`, and [`RwLock`].
//! Everything delegates to `std::sync`; poisoning is swallowed so that a
//! panicking thread (e.g. an injected parfor worker fault) never turns a later
//! `lock()` into a second panic — matching parking_lot's semantics.

use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;
use std::time::Duration;

/// A mutual-exclusion primitive with parking_lot's non-poisoning `lock()`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
#[derive(Debug)]
pub struct MutexGuard<'a, T: ?Sized> {
    // `Option` so Condvar::wait can temporarily take ownership of the std
    // guard; it is always `Some` outside of a wait.
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, ignoring poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }

    /// Attempts to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: Some(p.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (exclusive borrow of the mutex).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present")
    }
}

/// Result of a timed condition-variable wait.
#[derive(Debug, Clone, Copy)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// True when the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// Condition variable compatible with [`Mutex`]/[`MutexGuard`].
#[derive(Debug, Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Blocks until notified, atomically releasing the guard's mutex.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.inner.take().expect("guard present");
        guard.inner = Some(
            self.inner
                .wait(inner)
                .unwrap_or_else(PoisonError::into_inner),
        );
    }

    /// Blocks until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.inner.take().expect("guard present");
        let (inner, result) = self
            .inner
            .wait_timeout(inner, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(inner);
        WaitTimeoutResult(result.timed_out())
    }

    /// Wakes a single waiting thread.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes every waiting thread.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

/// Reader-writer lock with parking_lot's non-poisoning API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> std::sync::RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> std::sync::RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn lock_survives_a_panicked_holder() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison");
        })
        .join();
        // parking_lot semantics: no poison propagation.
        assert_eq!(*m.lock(), 0);
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let r = cv.wait_for(&mut g, Duration::from_millis(10));
        assert!(r.timed_out());
    }

    #[test]
    fn condvar_notify_wakes_waiter() {
        let m = Arc::new(Mutex::new(false));
        let cv = Arc::new(Condvar::new());
        let (m2, cv2) = (Arc::clone(&m), Arc::clone(&cv));
        let h = std::thread::spawn(move || {
            let mut g = m2.lock();
            while !*g {
                cv2.wait(&mut g);
            }
        });
        std::thread::sleep(Duration::from_millis(20));
        *m.lock() = true;
        cv.notify_all();
        h.join().unwrap();
    }
}
