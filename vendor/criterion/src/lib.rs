//! Offline stand-in for the `criterion` crate.
//!
//! Provides the API surface the bench crate uses — `Criterion`,
//! `benchmark_group`, `bench_function`, `bench_with_input`, `BenchmarkId`,
//! `criterion_group!`/`criterion_main!` — with a deliberately simple
//! measurement loop: each benchmark runs `sample_size` timed iterations and
//! reports mean wall-clock time. Statistical analysis, plotting, and CLI
//! filtering are out of scope; the point is that `cargo bench` compiles and
//! produces usable numbers without network access.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier for a parameterized benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter` identifier.
    pub fn new(name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{name}/{parameter}"),
        }
    }

    /// Identifier from a parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    samples: u64,
    total: Duration,
    iterations: u64,
}

impl Bencher {
    /// Times `routine` over the configured number of iterations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        for _ in 0..self.samples {
            let t0 = Instant::now();
            black_box(routine());
            self.total += t0.elapsed();
            self.iterations += 1;
        }
    }

    /// Times `routine` with a fresh untimed `setup` product per iteration.
    pub fn iter_with_setup<I, O, S, F>(&mut self, mut setup: S, mut routine: F)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        for _ in 0..self.samples {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            self.total += t0.elapsed();
            self.iterations += 1;
        }
    }
}

/// Top-level bench harness state.
pub struct Criterion {
    sample_size: u64,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            measurement_time: Duration::from_secs(5),
        }
    }
}

fn run_one(name: &str, samples: u64, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        samples,
        total: Duration::ZERO,
        iterations: 0,
    };
    f(&mut b);
    let mean = if b.iterations > 0 {
        b.total / b.iterations as u32
    } else {
        Duration::ZERO
    };
    println!(
        "bench: {name:<60} {mean:>12.3?}/iter ({} iters)",
        b.iterations
    );
}

impl Criterion {
    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1) as u64;
        self
    }

    /// Accepted for API compatibility; the simple loop ignores it.
    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measurement_time = t;
        self
    }

    /// Runs a stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl std::fmt::Display,
        mut f: F,
    ) -> &mut Self {
        run_one(&name.to_string(), self.sample_size, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }

    /// Finalizes the run (upstream prints summaries here; nothing to do).
    pub fn final_summary(&mut self) {}
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: u64,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed iterations per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1) as u64;
        self
    }

    /// Accepted for API compatibility; ignored.
    pub fn measurement_time(&mut self, _t: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl std::fmt::Display,
        mut f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), self.sample_size, &mut f);
        self
    }

    /// Runs one benchmark with an explicit input value.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl std::fmt::Display,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_one(
            &format!("{}/{}", self.name, id),
            self.sample_size,
            &mut |b| f(b, input),
        );
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            $(
                let mut c: $crate::Criterion = $cfg;
                $target(&mut c);
            )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trivial(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        let mut g = c.benchmark_group("grp");
        g.sample_size(3);
        g.bench_function(BenchmarkId::from_parameter(7), |b| {
            b.iter_with_setup(|| vec![0u8; 16], |v| v.len())
        });
        g.bench_with_input(BenchmarkId::new("sized", 4), &4usize, |b, &n| {
            b.iter(|| n * 2)
        });
        g.finish();
    }

    criterion_group!(benches, trivial);

    #[test]
    fn harness_runs_every_shape() {
        benches();
    }
}
