//! Offline stand-in for the `rand` crate.
//!
//! Implements the subset LIMA uses — `rngs::StdRng`, `SeedableRng::
//! seed_from_u64`, and the `Rng` extension methods `gen`/`gen_range`/
//! `gen_bool` — on top of xoshiro256** seeded via splitmix64. The generator
//! is deterministic per seed (the property the lineage tests rely on) and has
//! good enough statistical quality for the dataset generators' moment tests.
//! The exact stream differs from upstream `rand`, which is fine: all seeds in
//! this codebase are internal.

/// Core trait producing raw 64-bit output.
pub trait RngCore {
    /// Next raw 64 bits.
    fn next_u64(&mut self) -> u64;

    /// Next raw 32 bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of reproducible generators from seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Values samplable from the "standard" distribution of their type:
/// `f64`/`f32` uniform in `[0, 1)`, integers uniform over their domain,
/// `bool` fair.
pub trait StandardSample {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange {
    /// The element type produced.
    type Output;
    /// Draws one value from the range. Panics when the range is empty,
    /// matching `rand`'s contract.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for std::ops::Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Multiply-shift rejection-free mapping; bias is < 2^-64 per
                // draw, irrelevant for the workloads here.
                let v = (rng.next_u64() as u128 * span) >> 64;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange for std::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                let v = (rng.next_u64() as u128 * span) >> 64;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange for std::ops::Range<f64> {
    type Output = f64;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f64::sample(rng);
        self.start + u * (self.end - self.start)
    }
}

/// Extension methods over any [`RngCore`] (mirrors `rand::Rng`).
pub trait Rng: RngCore {
    /// Draws a standard-distribution value (`rng.gen::<f64>()` is uniform in
    /// `[0, 1)`).
    fn gen<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws uniformly from a range.
    fn gen_range<S: SampleRange>(&mut self, range: S) -> S::Output
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator (the crate's standard RNG).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// A generator seeded from system entropy-ish state (time + a counter); only
/// here for API compatibility, tests always seed explicitly.
pub fn thread_rng() -> rngs::StdRng {
    use std::sync::atomic::{AtomicU64, Ordering};
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let t = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0);
    SeedableRng::seed_from_u64(t ^ COUNTER.fetch_add(0x9E37_79B9, Ordering::Relaxed))
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn f64_is_in_unit_interval_and_well_spread() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v = rng.gen_range(10usize..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
            let f = rng.gen_range(-1.0f64..1.0);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    #[should_panic]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = rng.gen_range(5usize..5);
    }
}
