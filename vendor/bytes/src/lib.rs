//! Offline stand-in for the `bytes` crate: the [`Buf`]/[`BufMut`]/
//! [`BytesMut`] subset the spill-file format uses, with the same big-endian
//! wire encoding as the real crate.

use std::ops::{Deref, DerefMut};

/// Growable byte buffer used to assemble spill files.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Empty buffer with `cap` bytes preallocated.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Current length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when no bytes have been written.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<BytesMut> for Vec<u8> {
    fn from(b: BytesMut) -> Vec<u8> {
        b.data
    }
}

/// Write-side trait: appends fixed-width values big-endian.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends an `f64` as its big-endian IEEE-754 bit pattern.
    fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// Read-side trait: consumes fixed-width big-endian values from the front.
///
/// Like the real crate, the `get_*` methods panic when fewer than the
/// required bytes remain — callers must check [`Buf::remaining`] first.
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;

    /// Consumes `n` bytes, returning them as a slice.
    fn take_bytes(&mut self, n: usize) -> &[u8];

    /// Consumes one byte.
    fn get_u8(&mut self) -> u8 {
        self.take_bytes(1)[0]
    }

    /// Consumes a big-endian `u32`.
    fn get_u32(&mut self) -> u32 {
        u32::from_be_bytes(self.take_bytes(4).try_into().expect("4 bytes"))
    }

    /// Consumes a big-endian `u64`.
    fn get_u64(&mut self) -> u64 {
        u64::from_be_bytes(self.take_bytes(8).try_into().expect("8 bytes"))
    }

    /// Consumes an `f64` from its big-endian bit pattern.
    fn get_f64(&mut self) -> f64 {
        f64::from_bits(self.get_u64())
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn take_bytes(&mut self, n: usize) -> &[u8] {
        let (head, tail) = self.split_at(n);
        *self = tail;
        head
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_big_endian() {
        let mut buf = BytesMut::with_capacity(32);
        buf.put_u32(0x4C49_4D41);
        buf.put_u64(7);
        buf.put_f64(-1.5);
        buf.put_u8(0xAB);
        assert_eq!(buf.len(), 4 + 8 + 8 + 1);
        // Big-endian layout: magic's first byte leads.
        assert_eq!(buf[0], 0x4C);

        let mut r: &[u8] = &buf;
        assert_eq!(r.remaining(), 21);
        assert_eq!(r.get_u32(), 0x4C49_4D41);
        assert_eq!(r.get_u64(), 7);
        assert_eq!(r.get_f64(), -1.5);
        assert_eq!(r.get_u8(), 0xAB);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    #[should_panic]
    fn reading_past_the_end_panics() {
        let mut r: &[u8] = &[1, 2];
        let _ = r.get_u32();
    }
}
