//! Offline stand-in for the `crossbeam` crate.
//!
//! The workspace only uses `crossbeam::thread::scope` for structured
//! fork-join parallelism (matrix kernels, parfor workers, concurrency
//! tests). Since Rust 1.63 the standard library provides the same guarantee
//! via `std::thread::scope`; this crate adapts the crossbeam calling
//! convention (closures receive the scope handle, `join` returns a
//! `thread::Result`) onto it so the no-network build environment needs no
//! external dependency.

pub mod thread {
    /// Result alias matching `crossbeam::thread::scope`'s panic-capturing
    /// return type.
    pub type Result<T> = std::thread::Result<T>;

    /// Scope handle passed to the closure and to each spawned worker.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    // A plain copy of a shared reference; manual impls keep the derive
    // machinery from demanding bounds on the lifetimes.
    impl<'scope, 'env> Clone for Scope<'scope, 'env> {
        fn clone(&self) -> Self {
            *self
        }
    }
    impl<'scope, 'env> Copy for Scope<'scope, 'env> {}

    /// Join handle for a scoped worker thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the worker and returns its result; a panicking worker
        /// yields `Err` with the panic payload instead of aborting.
        pub fn join(self) -> Result<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a worker inside the scope. As with crossbeam, the closure
        /// receives the scope handle so workers can spawn siblings.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let scope = *self;
            ScopedJoinHandle {
                inner: self.inner.spawn(move || f(scope)),
            }
        }
    }

    /// Runs `f` with a scope handle; every thread spawned through the handle
    /// is joined before `scope` returns. Unlike crossbeam this cannot observe
    /// unjoined panicked children (std re-raises them), so the result is
    /// always `Ok` when `f` itself returns.
    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: for<'scope> FnOnce(Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scope_joins_workers_and_collects_results() {
        let data = [1, 2, 3, 4];
        let sum: i32 = crate::thread::scope(|s| {
            let handles: Vec<_> = data.iter().map(|&v| s.spawn(move |_| v * 10)).collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        })
        .unwrap();
        assert_eq!(sum, 100);
    }

    #[test]
    fn joined_worker_panics_are_captured_not_propagated() {
        let r = crate::thread::scope(|s| {
            let h = s.spawn(|_| -> i32 { panic!("worker died") });
            h.join()
        })
        .unwrap();
        assert!(r.is_err());
    }

    #[test]
    fn workers_can_spawn_siblings_through_the_handle() {
        let v = crate::thread::scope(|s| {
            let h = s.spawn(|inner| inner.spawn(|_| 7).join().unwrap());
            h.join().unwrap()
        })
        .unwrap();
        assert_eq!(v, 7);
    }
}
