//! Strategy trait and combinators for the vendored proptest stand-in.

use crate::test_runner::TestRng;
use std::marker::PhantomData;
use std::sync::Arc;

/// A recipe for generating values of `Self::Value` from a [`TestRng`].
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Builds a recursive strategy: `self` generates leaves, `branch` builds
    /// composite values out of an inner strategy. `depth` bounds recursion;
    /// the `_desired_size`/`_expected_branch` parameters exist for signature
    /// compatibility with upstream proptest and are ignored.
    fn prop_recursive<F, S>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch: u32,
        branch: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S,
        S: Strategy<Value = Self::Value> + 'static,
    {
        // Level 0 is leaves only; each further level mixes leaves with one
        // more layer of branching, weighted toward leaves so expected sizes
        // stay small.
        let leaf = self.boxed();
        let mut strat = leaf.clone();
        for _ in 0..depth {
            let layer = branch(strat).boxed();
            strat = Union::weighted(vec![(2, leaf.clone()), (3, layer)]).boxed();
        }
        strat
    }

    /// Type-erases the strategy (cheaply clonable).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Arc::new(self))
    }
}

/// Object-safe generation, used behind [`BoxedStrategy`].
trait DynStrategy<T> {
    fn dyn_generate(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn dyn_generate(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased, reference-counted strategy.
pub struct BoxedStrategy<T>(Arc<dyn DynStrategy<T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Arc::clone(&self.0))
    }
}

impl<T> std::fmt::Debug for BoxedStrategy<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("BoxedStrategy")
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.dyn_generate(rng)
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Output of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Weighted choice among boxed strategies (`prop_oneof!`).
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u32,
}

impl<T> Union<T> {
    /// Uniform choice among `arms`.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        Self::weighted(arms.into_iter().map(|a| (1, a)).collect())
    }

    /// Choice among `arms` with the given relative weights.
    pub fn weighted(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        let total = arms.iter().map(|(w, _)| *w).sum();
        Union { arms, total }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.usize_in(0, self.total as usize) as u32;
        for (w, arm) in &self.arms {
            if pick < *w {
                return arm.generate(rng);
            }
            pick -= w;
        }
        self.arms.last().expect("nonempty").1.generate(rng)
    }
}

// ---------------------------------------------------------------- primitives

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = ((rng.next_u64() as u128) * span) >> 64;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                let v = ((rng.next_u64() as u128) * span) >> 64;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl Strategy for std::ops::Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (rng.next_f64() as f32) * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+)),+ $(,)?) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy!(
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4),
    (A.0, B.1, C.2, D.3, E.4, F.5),
);

// ------------------------------------------------------------ string patterns

/// `&str` strategies interpret the string as a micro-regex: a sequence of
/// atoms (`[class]`, escape, or literal char), each optionally repeated with
/// `{m,n}`, `*` (0..=8), or `+` (1..=8). `\PC` means "any printable char".
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        generate_pattern(self, rng)
    }
}

impl Strategy for String {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        generate_pattern(self, rng)
    }
}

#[derive(Debug, Clone)]
enum Atom {
    /// Choice among explicit chars (expanded from classes).
    Class(Vec<char>),
    /// Any printable character (`\PC` and `.`).
    AnyPrintable,
    /// A literal character.
    Lit(char),
}

fn printable(rng: &mut TestRng) -> char {
    // Mostly ASCII with a sprinkle of multibyte chars to keep lexers honest.
    match rng.usize_in(0, 10) {
        0 => char::from_u32(0x00C0 + rng.usize_in(0, 0x100) as u32).unwrap_or('é'),
        _ => (0x20u8 + rng.usize_in(0, 0x5F) as u8) as char,
    }
}

fn parse_class(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> Vec<char> {
    let mut out = Vec::new();
    let mut prev: Option<char> = None;
    while let Some(c) = chars.next() {
        match c {
            ']' => break,
            '-' => {
                // Range like a-z when bracketed by endpoints; literal '-'
                // otherwise.
                let (Some(lo), Some(&hi)) = (prev, chars.peek()) else {
                    out.push('-');
                    prev = None;
                    continue;
                };
                if hi == ']' {
                    out.push('-');
                    continue;
                }
                chars.next();
                let (lo, hi) = (lo as u32, hi as u32);
                for v in lo..=hi {
                    if let Some(ch) = char::from_u32(v) {
                        out.push(ch);
                    }
                }
                prev = None;
            }
            c => {
                out.push(c);
                prev = Some(c);
            }
        }
    }
    if out.is_empty() {
        out.push('a');
    }
    out
}

fn parse_repeat(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> (usize, usize) {
    match chars.peek() {
        Some('*') => {
            chars.next();
            (0, 9)
        }
        Some('+') => {
            chars.next();
            (1, 9)
        }
        Some('?') => {
            chars.next();
            (0, 2)
        }
        Some('{') => {
            chars.next();
            let mut spec = String::new();
            for c in chars.by_ref() {
                if c == '}' {
                    break;
                }
                spec.push(c);
            }
            let mut parts = spec.splitn(2, ',');
            let lo: usize = parts.next().unwrap_or("1").trim().parse().unwrap_or(1);
            let hi: usize = parts
                .next()
                .map(|s| s.trim().parse().unwrap_or(lo))
                .unwrap_or(lo);
            (lo, hi.max(lo) + 1)
        }
        _ => (1, 2),
    }
}

fn generate_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let mut chars = pattern.chars().peekable();
    let mut out = String::new();
    while let Some(c) = chars.next() {
        let atom = match c {
            '[' => Atom::Class(parse_class(&mut chars)),
            '.' => Atom::AnyPrintable,
            '\\' => match chars.next() {
                // \PC — "printable character" (the unicode-category escape
                // the lexer-fuzz test uses). Consume the category letter.
                Some('P') | Some('p') => {
                    chars.next();
                    Atom::AnyPrintable
                }
                Some('n') => Atom::Lit('\n'),
                Some('t') => Atom::Lit('\t'),
                Some(other) => Atom::Lit(other),
                None => Atom::Lit('\\'),
            },
            lit => Atom::Lit(lit),
        };
        let (lo, hi) = parse_repeat(&mut chars);
        let n = rng.usize_in(lo, hi);
        for _ in 0..n {
            match &atom {
                Atom::Class(set) => out.push(set[rng.usize_in(0, set.len())]),
                Atom::AnyPrintable => out.push(printable(rng)),
                Atom::Lit(ch) => out.push(*ch),
            }
        }
    }
    out
}

// ---------------------------------------------------------------- any::<T>()

/// Types with a default "arbitrary" strategy (numeric subset).
pub trait ArbitraryValue: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// Strategy form of [`ArbitraryValue`], returned by `any::<T>()`.
pub struct Any<T>(pub(crate) PhantomData<T>);

impl<T: ArbitraryValue> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl ArbitraryValue for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl ArbitraryValue for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl ArbitraryValue for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite spread around zero; property tests here never need NaN/inf.
        (rng.next_f64() - 0.5) * 2e6
    }
}
