//! Offline stand-in for the `proptest` crate.
//!
//! The no-network build environment vendors the subset of proptest the
//! workspace's property tests use: the [`proptest!`] macro, numeric-range /
//! tuple / string-pattern strategies, `prop_map`, `prop_recursive`,
//! `prop_oneof!`, `Just`, `proptest::collection::vec`, and the
//! `prop_assert*` macros.
//!
//! Differences from upstream, deliberately accepted:
//!
//! * cases are generated from a deterministic per-test seed (derived from the
//!   test name), so failures reproduce exactly on rerun;
//! * there is no shrinking — a failing case panics with the case index so it
//!   can be replayed;
//! * string strategies support the tiny regex subset used here
//!   (`[a-z]{m,n}`-style classes and `\PC*`), not full regex syntax.

pub mod strategy;

pub mod test_runner {
    /// Deterministic generator driving test-case generation (splitmix64).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Generator for case number `case` of the test named `name`.
        pub fn for_case(name: &str, case: u64) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            TestRng {
                state: h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
            }
        }

        /// Next raw 64 bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform `usize` in `[lo, hi)`; `lo` when the range is empty.
        pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
            if hi <= lo {
                return lo;
            }
            let span = (hi - lo) as u128;
            lo + ((self.next_u64() as u128 * span) >> 64) as usize
        }
    }

    /// Per-`proptest!`-block configuration.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    impl ProptestConfig {
        /// Configuration running `cases` cases per test.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Size specifications accepted by [`vec`]: an exact length or a
    /// half-open range of lengths.
    pub trait IntoSizeRange {
        /// Lower/upper (exclusive) length bounds.
        fn bounds(&self) -> (usize, usize);
    }

    impl IntoSizeRange for usize {
        fn bounds(&self) -> (usize, usize) {
            (*self, *self + 1)
        }
    }

    impl IntoSizeRange for std::ops::Range<usize> {
        fn bounds(&self) -> (usize, usize) {
            (self.start, self.end)
        }
    }

    /// Strategy producing `Vec`s whose elements come from `element`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        lo: usize,
        hi: usize,
    }

    /// Vector of values from `element`, with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
        let (lo, hi) = size.bounds();
        VecStrategy { element, lo, hi }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.usize_in(self.lo, self.hi);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Standard-distribution strategy for a type (tiny subset: the numeric
    /// and bool implementations).
    pub fn any<T: crate::strategy::ArbitraryValue>() -> crate::strategy::Any<T> {
        crate::strategy::Any(std::marker::PhantomData)
    }
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Property-test entry point: declares `#[test]` functions whose arguments
/// are drawn from strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr) $( $(#[$meta:meta])* fn $name:ident
        ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg = $cfg;
                for case in 0..cfg.cases as u64 {
                    let mut rng = $crate::test_runner::TestRng::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        case,
                    );
                    $(
                        let $pat = $crate::strategy::Strategy::generate(
                            &($strat), &mut rng,
                        );
                    )+
                    $body
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(v in 10u64..20, f in -1.0f64..1.0, (a, b) in (0usize..5, 0u8..3)) {
            prop_assert!((10..20).contains(&v));
            prop_assert!((-1.0..1.0).contains(&f));
            prop_assert!(a < 5 && b < 3);
        }

        #[test]
        fn vec_lengths_respect_size_range(xs in crate::collection::vec(0u8..10, 2..6)) {
            prop_assert!((2..6).contains(&xs.len()));
            prop_assert!(xs.iter().all(|&x| x < 10));
        }

        #[test]
        fn mapped_and_oneof_strategies_compose(
            s in prop_oneof![Just("a"), Just("b")],
            n in (1usize..4).prop_map(|n| n * 2),
        ) {
            prop_assert!(s == "a" || s == "b");
            prop_assert!(n % 2 == 0 && n <= 6);
        }

        #[test]
        fn string_patterns_generate_matching_text(s in "[a-z]{1,6}") {
            prop_assert!((1..=6).contains(&s.chars().count()));
            prop_assert!(s.chars().all(|c| c.is_ascii_lowercase()));
        }
    }

    #[test]
    fn cases_are_deterministic_per_name() {
        use crate::strategy::Strategy;
        let mut a = crate::test_runner::TestRng::for_case("t", 3);
        let mut b = crate::test_runner::TestRng::for_case("t", 3);
        let s = 0u64..1000;
        assert_eq!(s.generate(&mut a), s.generate(&mut b));
    }

    #[test]
    fn recursive_strategies_terminate() {
        use crate::strategy::Strategy;
        #[derive(Debug, Clone)]
        enum Tree {
            Leaf(u8),
            Node(Vec<Tree>),
        }
        let strat = (0u8..10)
            .prop_map(Tree::Leaf)
            .boxed()
            .prop_recursive(4, 16, 3, |inner| {
                crate::collection::vec(inner, 1..3).prop_map(Tree::Node)
            });
        let mut rng = crate::test_runner::TestRng::for_case("tree", 0);
        for _ in 0..50 {
            let t = strat.generate(&mut rng);
            fn depth(t: &Tree) -> usize {
                match t {
                    Tree::Leaf(v) => {
                        assert!(*v < 10);
                        1
                    }
                    Tree::Node(c) => 1 + c.iter().map(depth).max().unwrap_or(0),
                }
            }
            assert!(depth(&t) <= 5);
        }
    }
}
